// Package env defines the reinforcement-learning environment that
// AutoMDT's PPO agent interacts with: the state space (thread counts,
// per-stage throughputs, and free staging-buffer space at both ends,
// §IV-D-1), the action space (the concurrency tuple ⟨n_r, n_n, n_w⟩,
// §IV-D-2), and the utility-function reward of §IV-B:
//
//	U = t_r/k^{n_r} + t_n/k^{n_n} + t_w/k^{n_w},  k = 1.02
//
// The same Environment interface is implemented by the offline simulator
// (SimEnv, used for training) and by the live transfer engine
// (internal/core wraps the engine in the production phase), which is what
// lets a simulator-trained checkpoint drive a real transfer unchanged.
package env

import (
	"math"
	"math/rand"

	"automdt/internal/sim"
)

// DefaultK is the utility penalty base fixed by the paper's link sweep.
const DefaultK = 1.02

// StateDim is the size of the observation vector:
// 3 thread counts, 3 throughputs, 2 free-buffer amounts.
const StateDim = 8

// ActionDim is the size of the action vector: one concurrency value per
// stage.
const ActionDim = 3

// State is the observation handed to the agent.
type State struct {
	Threads      [3]int     // current ⟨n_r, n_n, n_w⟩
	Throughput   [3]float64 // last-second ⟨t_r, t_n, t_w⟩ in Mbps
	SenderFree   float64    // unused sender staging space, Mb
	ReceiverFree float64    // unused receiver staging space, Mb
}

// Vector flattens the state, normalizing by the given scales so network
// inputs are O(1): thread counts by maxThreads, throughputs by rateScale,
// buffer space by bufScale.
func (s State) Vector(maxThreads int, rateScale, bufScale float64) []float64 {
	v := make([]float64, 0, StateDim)
	for i := 0; i < 3; i++ {
		v = append(v, float64(s.Threads[i])/float64(maxThreads))
	}
	for i := 0; i < 3; i++ {
		v = append(v, s.Throughput[i]/rateScale)
	}
	v = append(v, s.SenderFree/bufScale, s.ReceiverFree/bufScale)
	return v
}

// Action is the concurrency tuple chosen by the agent.
type Action struct {
	Threads [3]int
}

// Clamp limits each component to [1, maxThreads] (§IV-F).
func (a Action) Clamp(maxThreads int) Action {
	for i := range a.Threads {
		if a.Threads[i] < 1 {
			a.Threads[i] = 1
		}
		if a.Threads[i] > maxThreads {
			a.Threads[i] = maxThreads
		}
	}
	return a
}

// FromContinuous rounds a raw policy sample to an integer action,
// matching §IV-F: round then clamp.
func FromContinuous(raw []float64, maxThreads int) Action {
	var a Action
	for i := 0; i < 3 && i < len(raw); i++ {
		a.Threads[i] = int(math.Round(raw[i]))
	}
	return a.Clamp(maxThreads)
}

// Utility computes the paper's reward: Σ tᵢ/k^{nᵢ}. Throughputs are in
// Mbps; higher concurrency is exponentially penalized.
func Utility(t [3]float64, n [3]int, k float64) float64 {
	u := 0.0
	for i := 0; i < 3; i++ {
		u += t[i] / math.Pow(k, float64(n[i]))
	}
	return u
}

// Controller decides the next concurrency tuple from the latest observed
// transfer state. It is the engine-facing abstraction implemented by the
// AutoMDT agent (internal/core), the Marlin baseline (internal/marlin),
// and the static Globus-like baseline (internal/static).
type Controller interface {
	// Name identifies the optimizer in traces and reports.
	Name() string
	// Decide maps the observed state to the concurrency tuple to apply
	// for the next interval.
	Decide(State) Action
}

// ScoredAction is one candidate action with the score its controller
// assigned when weighing it — the currency of the decision flight
// recorder's counterfactual-regret accounting. Scores need only be
// comparable within one Decide call; the label names the candidate's
// role ("hold", "reverse:net", "mean").
type ScoredAction struct {
	Action Action
	Score  float64
	Label  string
}

// AlternativeScorer is an optional Controller extension. Controllers
// that internally weigh several candidate moves (Marlin's per-stage
// directions, JointGD's probes, the policy's mean vs. sampled action)
// expose them here so the flight recorder can log what the controller
// actually considered instead of reconstructing generic neighbors. The
// returned slice includes the chosen action (matching the last Decide
// for the same state) among its candidates.
type AlternativeScorer interface {
	// ScoredAlternatives returns the candidates weighed for state s,
	// each scored by the controller's own objective.
	ScoredAlternatives(s State) []ScoredAction
}

// Environment is the PPO-facing interface (E in Algorithm 2).
type Environment interface {
	// Reset starts a new episode and returns the initial state.
	Reset() State
	// Step applies the action, advances one interval, and returns the
	// new state and the utility reward.
	Step(Action) (State, float64)
	// MaxThreads is the per-stage concurrency bound n_max.
	MaxThreads() int
	// Scales returns normalization constants for State.Vector.
	Scales() (rateScale, bufScale float64)
}

// SimEnv adapts the Algorithm 1 simulator to the Environment interface,
// with randomized episode initialization: Reset draws fresh random thread
// counts (the paper resets each episode "with a new set of randomly
// initialized threads") and random staging occupancies.
type SimEnv struct {
	Sim *sim.Simulator
	// K is the utility penalty base; DefaultK if zero.
	K float64
	// MaxThreadsN bounds each concurrency value; 32 if zero.
	MaxThreadsN int
	// Rand drives episode randomization.
	Rand *rand.Rand

	cur State
}

// NewSimEnv builds a simulator-backed environment.
func NewSimEnv(s *sim.Simulator, rng *rand.Rand) *SimEnv {
	return &SimEnv{Sim: s, K: DefaultK, MaxThreadsN: 32, Rand: rng}
}

// MaxThreads implements Environment.
func (e *SimEnv) MaxThreads() int {
	if e.MaxThreadsN <= 0 {
		return 32
	}
	return e.MaxThreadsN
}

func (e *SimEnv) k() float64 {
	if e.K <= 0 {
		return DefaultK
	}
	return e.K
}

// Scales implements Environment. Rates are scaled by the smallest
// aggregate stage capacity (the end-to-end bottleneck), buffers by the
// sender capacity.
func (e *SimEnv) Scales() (rateScale, bufScale float64) {
	cfg := e.Sim.Config()
	rateScale = math.Inf(1)
	for i := sim.Read; i <= sim.Write; i++ {
		agg := cfg.TPT[i] * float64(e.MaxThreads())
		if cfg.Bandwidth[i] > 0 {
			agg = math.Min(agg, cfg.Bandwidth[i])
		}
		rateScale = math.Min(rateScale, agg)
	}
	if math.IsInf(rateScale, 1) || rateScale <= 0 {
		rateScale = 1
	}
	return rateScale, cfg.SenderBufCap
}

// Reset implements Environment.
func (e *SimEnv) Reset() State {
	e.Sim.Reset()
	cfg := e.Sim.Config()
	if e.Rand != nil {
		e.Sim.SetBuffers(
			e.Rand.Float64()*cfg.SenderBufCap,
			e.Rand.Float64()*cfg.ReceiverBufCap,
		)
	}
	var threads [3]int
	for i := range threads {
		threads[i] = 1
		if e.Rand != nil {
			threads[i] = 1 + e.Rand.Intn(e.MaxThreads())
		}
	}
	// Run one settling step so the initial state carries real
	// throughput/buffer signals.
	res := e.Sim.Step(threads[0], threads[1], threads[2])
	e.cur = State{
		Threads:      threads,
		Throughput:   res.Throughput,
		SenderFree:   res.SenderBufFree,
		ReceiverFree: res.ReceiverBufFree,
	}
	return e.cur
}

// Step implements Environment.
func (e *SimEnv) Step(a Action) (State, float64) {
	a = a.Clamp(e.MaxThreads())
	res := e.Sim.Step(a.Threads[0], a.Threads[1], a.Threads[2])
	e.cur = State{
		Threads:      a.Threads,
		Throughput:   res.Throughput,
		SenderFree:   res.SenderBufFree,
		ReceiverFree: res.ReceiverBufFree,
	}
	return e.cur, Utility(res.Throughput, a.Threads, e.k())
}

// TheoreticalMaxReward computes Rmax = b·(k^{-n*_r}+k^{-n*_n}+k^{-n*_w})
// from the bottleneck rate and optimal thread counts (§IV-E), the
// convergence yardstick for training.
func TheoreticalMaxReward(bottleneck float64, nStar [3]int, k float64) float64 {
	r := 0.0
	for i := 0; i < 3; i++ {
		r += bottleneck * math.Pow(k, -float64(nStar[i]))
	}
	return r
}
