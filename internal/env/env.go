// Package env defines the reinforcement-learning environment that
// AutoMDT's PPO agent interacts with: the state space (per-stage
// concurrency, per-stage throughputs, and free staging-buffer space at
// both ends, §IV-D-1), the action space (the concurrency tuple over the
// named stage dimensions, §IV-D-2 extended with a connection dimension),
// and the utility-function reward of §IV-B:
//
//	U = Σᵢ tᵢ/k^{nᵢ},  k = 1.02
//
// The paper's action space is the 3-tuple ⟨n_r, n_n, n_w⟩; this package
// generalizes it to named stage dimensions so the data plane's striped
// multi-connection knob is a first-class controller dimension:
//
//	⟨n_r, n_c, n_s, n_w⟩ = ⟨read, conns, streams-per-conn, write⟩
//
// where n_c is the number of parallel data connections a session stripes
// its chunks across and n_s the number of concurrent streams (workers)
// multiplexed over each connection, so the total network concurrency is
// n_c·n_s.
//
// The same Environment interface is implemented by the offline simulator
// (SimEnv, used for training) and by the live transfer engine
// (internal/core wraps the engine in the production phase), which is what
// lets a simulator-trained checkpoint drive a real transfer unchanged.
package env

import (
	"fmt"
	"math"
	"math/rand"

	"automdt/internal/sim"
)

// DefaultK is the utility penalty base fixed by the paper's link sweep.
const DefaultK = 1.02

// Stage names one dimension of the concurrency action space. Unlike
// sim.Stage (the three physical pipeline operations), Stage indexes the
// knobs a controller tunes: the network stage contributes two dimensions,
// connection count and streams per connection.
type Stage int

// The named stage dimensions of the action space.
const (
	// StageRead is the file-read concurrency n_r.
	StageRead Stage = iota
	// StageConns is the parallel data-connection count n_c.
	StageConns
	// StageStreams is the per-connection stream (worker) count n_s; the
	// total network concurrency is n_c·n_s.
	StageStreams
	// StageWrite is the destination write concurrency n_w.
	StageWrite
	// StageCount is the number of action dimensions.
	StageCount
)

// String returns the short dimension name used in traces and metrics.
func (s Stage) String() string {
	switch s {
	case StageRead:
		return "read"
	case StageConns:
		return "conns"
	case StageStreams:
		return "streams"
	case StageWrite:
		return "write"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// StageNames lists the dimension names in Stage order.
func StageNames() [StageCount]string {
	var out [StageCount]string
	for s := Stage(0); s < StageCount; s++ {
		out[s] = s.String()
	}
	return out
}

// StageVec is a per-stage-dimension vector of real values (throughputs,
// utilities, scores). The network throughput is attributed to both the
// conns and streams dimensions, mirroring how the utility function
// penalizes each knob independently.
type StageVec [StageCount]float64

// StateDim is the size of the observation vector:
// StageCount concurrency values, StageCount throughputs, 2 free-buffer
// amounts.
const StateDim = 2*int(StageCount) + 2

// ActionDim is the size of the action vector: one concurrency value per
// stage dimension.
const ActionDim = int(StageCount)

// State is the observation handed to the agent.
type State struct {
	// N is the current concurrency tuple ⟨n_r, n_c, n_s, n_w⟩.
	N [StageCount]int
	// Throughput holds the last-interval per-dimension rates in Mbps;
	// Throughput[StageConns] and Throughput[StageStreams] both carry the
	// network rate t_n.
	Throughput   StageVec
	SenderFree   float64 // unused sender staging space, Mb
	ReceiverFree float64 // unused receiver staging space, Mb
}

// Vector flattens the state, normalizing by the given scales so network
// inputs are O(1): concurrency by maxThreads, throughputs by rateScale,
// buffer space by bufScale.
func (s State) Vector(maxThreads int, rateScale, bufScale float64) []float64 {
	v := make([]float64, 0, StateDim)
	for i := Stage(0); i < StageCount; i++ {
		v = append(v, float64(s.N[i])/float64(maxThreads))
	}
	for i := Stage(0); i < StageCount; i++ {
		v = append(v, s.Throughput[i]/rateScale)
	}
	v = append(v, s.SenderFree/bufScale, s.ReceiverFree/bufScale)
	return v
}

// Action is the concurrency tuple chosen by the agent, one value per
// named stage dimension.
type Action struct {
	N [StageCount]int
}

// ActionOf builds an action from the four dimension values.
func ActionOf(read, conns, streams, write int) Action {
	return Action{N: [StageCount]int{read, conns, streams, write}}
}

// Clamp limits each component to [1, maxThreads] (§IV-F).
func (a Action) Clamp(maxThreads int) Action {
	for i := range a.N {
		if a.N[i] < 1 {
			a.N[i] = 1
		}
		if a.N[i] > maxThreads {
			a.N[i] = maxThreads
		}
	}
	return a
}

// NetWorkers is the total network concurrency n_c·n_s implied by the
// action.
func (a Action) NetWorkers() int {
	return a.N[StageConns] * a.N[StageStreams]
}

// FromContinuous rounds a raw policy sample to an integer action,
// matching §IV-F: round then clamp. Missing trailing dimensions (a raw
// slice shorter than ActionDim) clamp to 1.
func FromContinuous(raw []float64, maxThreads int) Action {
	var a Action
	for i := 0; i < int(StageCount) && i < len(raw); i++ {
		a.N[i] = int(math.Round(raw[i]))
	}
	return a.Clamp(maxThreads)
}

// Utility computes the paper's reward generalized over the named stage
// dimensions: U = Σᵢ tᵢ/k^{nᵢ}. Throughputs are in Mbps; higher
// concurrency on any dimension is exponentially penalized. The caller
// supplies the throughput attribution (ThroughputVec builds the standard
// one from physical rates).
func Utility(t StageVec, a Action, k float64) float64 {
	u := 0.0
	for i := Stage(0); i < StageCount; i++ {
		u += t[i] / math.Pow(k, float64(a.N[i]))
	}
	return u
}

// ThroughputVec attributes the three physical stage rates to the four
// controller dimensions: the network rate t_n is charged to both the
// conns and streams knobs.
func ThroughputVec(read, network, write float64) StageVec {
	return StageVec{read, network, network, write}
}

// Controller decides the next concurrency tuple from the latest observed
// transfer state. It is the engine-facing abstraction implemented by the
// AutoMDT agent (internal/core), the Marlin baseline (internal/marlin),
// and the static Globus-like baseline (internal/static).
type Controller interface {
	// Name identifies the optimizer in traces and reports.
	Name() string
	// Decide maps the observed state to the concurrency tuple to apply
	// for the next interval.
	Decide(State) Action
}

// ScoredAction is one candidate action with the score its controller
// assigned when weighing it — the currency of the decision flight
// recorder's counterfactual-regret accounting. Scores need only be
// comparable within one Decide call; the label names the candidate's
// role ("hold", "reverse:conns", "mean").
type ScoredAction struct {
	Action Action
	Score  float64
	Label  string
}

// AlternativeScorer is an optional Controller extension. Controllers
// that internally weigh several candidate moves (Marlin's per-stage
// directions, JointGD's probes, the policy's mean vs. sampled action)
// expose them here so the flight recorder can log what the controller
// actually considered instead of reconstructing generic neighbors. The
// returned slice includes the chosen action (matching the last Decide
// for the same state) among its candidates.
type AlternativeScorer interface {
	// ScoredAlternatives returns the candidates weighed for state s,
	// each scored by the controller's own objective.
	ScoredAlternatives(s State) []ScoredAction
}

// Environment is the PPO-facing interface (E in Algorithm 2).
type Environment interface {
	// Reset starts a new episode and returns the initial state.
	Reset() State
	// Step applies the action, advances one interval, and returns the
	// new state and the utility reward.
	Step(Action) (State, float64)
	// MaxThreads is the per-dimension concurrency bound n_max.
	MaxThreads() int
	// Scales returns normalization constants for State.Vector.
	Scales() (rateScale, bufScale float64)
}

// SimEnv adapts the Algorithm 1 simulator to the Environment interface,
// with randomized episode initialization: Reset draws fresh random
// concurrency tuples (the paper resets each episode "with a new set of
// randomly initialized threads") and random staging occupancies.
type SimEnv struct {
	Sim *sim.Simulator
	// K is the utility penalty base; DefaultK if zero.
	K float64
	// MaxThreadsN bounds each concurrency value; 32 if zero.
	MaxThreadsN int
	// Rand drives episode randomization.
	Rand *rand.Rand
	// RateDrift, when positive, additionally randomizes per-task rates at
	// episode reset: each stage independently keeps its probed rate with
	// probability one half, or is scaled by a uniform factor drawn from
	// [1-RateDrift, 1]. Training across drifted episodes teaches the
	// policy to re-expand a dimension's concurrency when its per-worker
	// throughput degrades mid-transfer (background traffic, a throttled
	// disk) instead of memorizing the fixed-rate optimum. Observation
	// normalization (Scales) stays pinned to the probed rates so drifted
	// episodes look like degraded conditions, not a rescaled world.
	RateDrift float64

	cur State
	// base holds the probed per-task rates, captured before the first
	// drift so SetTPT perturbations never compound across episodes.
	base    [3]float64
	baseSet bool
}

// NewSimEnv builds a simulator-backed environment.
func NewSimEnv(s *sim.Simulator, rng *rand.Rand) *SimEnv {
	return &SimEnv{Sim: s, K: DefaultK, MaxThreadsN: 32, Rand: rng}
}

// MaxThreads implements Environment.
func (e *SimEnv) MaxThreads() int {
	if e.MaxThreadsN <= 0 {
		return 32
	}
	return e.MaxThreadsN
}

func (e *SimEnv) k() float64 {
	if e.K <= 0 {
		return DefaultK
	}
	return e.K
}

// Scales implements Environment. Rates are scaled by the smallest
// aggregate stage capacity (the end-to-end bottleneck), buffers by the
// sender capacity.
func (e *SimEnv) Scales() (rateScale, bufScale float64) {
	cfg := e.Sim.Config()
	tpt := cfg.TPT
	if e.baseSet {
		tpt = e.base
	}
	rateScale = math.Inf(1)
	for i := sim.Read; i <= sim.Write; i++ {
		agg := tpt[i] * float64(e.MaxThreads())
		if cfg.Bandwidth[i] > 0 {
			agg = math.Min(agg, cfg.Bandwidth[i])
		}
		if i == sim.Network && cfg.ConnMbps > 0 {
			agg = math.Min(agg, cfg.ConnMbps*float64(e.MaxThreads()))
		}
		rateScale = math.Min(rateScale, agg)
	}
	if math.IsInf(rateScale, 1) || rateScale <= 0 {
		rateScale = 1
	}
	return rateScale, cfg.SenderBufCap
}

// stateFrom converts a simulator step result into an observation.
func stateFrom(n [StageCount]int, res sim.Result) State {
	return State{
		N: n,
		Throughput: ThroughputVec(
			res.Throughput[sim.Read], res.Throughput[sim.Network], res.Throughput[sim.Write]),
		SenderFree:   res.SenderBufFree,
		ReceiverFree: res.ReceiverBufFree,
	}
}

// driftRates applies the per-episode RateDrift perturbation: restore the
// probed base rates, then independently degrade each stage with
// probability one half. Half-at-base episodes keep the convergence target
// (90% of the probed Rmax) reachable so early stopping still fires.
func (e *SimEnv) driftRates() {
	if e.RateDrift <= 0 || e.Rand == nil {
		return
	}
	if !e.baseSet {
		e.base = e.Sim.Config().TPT
		e.baseSet = true
	}
	for st := sim.Read; st <= sim.Write; st++ {
		f := 1.0
		if e.Rand.Float64() < 0.5 {
			f = 1 - e.RateDrift*e.Rand.Float64()
		}
		e.Sim.SetTPT(st, e.base[st]*f)
	}
}

// Reset implements Environment.
func (e *SimEnv) Reset() State {
	e.Sim.Reset()
	e.driftRates()
	cfg := e.Sim.Config()
	if e.Rand != nil {
		e.Sim.SetBuffers(
			e.Rand.Float64()*cfg.SenderBufCap,
			e.Rand.Float64()*cfg.ReceiverBufCap,
		)
	}
	var n [StageCount]int
	for i := range n {
		n[i] = 1
		if e.Rand != nil {
			n[i] = 1 + e.Rand.Intn(e.MaxThreads())
		}
	}
	// Run one settling step so the initial state carries real
	// throughput/buffer signals.
	res := e.Sim.Step(n[StageRead], n[StageConns], n[StageStreams], n[StageWrite])
	e.cur = stateFrom(n, res)
	return e.cur
}

// Step implements Environment.
func (e *SimEnv) Step(a Action) (State, float64) {
	a = a.Clamp(e.MaxThreads())
	res := e.Sim.Step(a.N[StageRead], a.N[StageConns], a.N[StageStreams], a.N[StageWrite])
	e.cur = stateFrom(a.N, res)
	return e.cur, Utility(e.cur.Throughput, a, e.k())
}

// TheoreticalMaxReward computes Rmax = b·Σᵢ k^{-n*ᵢ} from the bottleneck
// rate and the optimal concurrency tuple (§IV-E generalized to the named
// stage dimensions), the convergence yardstick for training.
func TheoreticalMaxReward(bottleneck float64, nStar Action, k float64) float64 {
	r := 0.0
	for i := Stage(0); i < StageCount; i++ {
		r += bottleneck * math.Pow(k, -float64(nStar.N[i]))
	}
	return r
}
