// Package static implements the Globus-like baseline of Table I: a
// monolithic, statically configured optimizer. Globus (globus-url-copy)
// is driven by fixed concurrency/parallelism settings chosen before the
// transfer (the paper uses concurrency 4, parallelism 8) and never adapts;
// its monolithic architecture couples the read, network, and write stages
// to the same thread count.
package static

import "automdt/internal/env"

// Controller applies a fixed concurrency to every stage.
type Controller struct {
	// Concurrency is the fixed stream count (paper's Globus setting: 4).
	Concurrency int
}

// New creates a static monolithic controller.
func New(concurrency int) *Controller {
	if concurrency < 1 {
		concurrency = 1
	}
	return &Controller{Concurrency: concurrency}
}

// Name implements env.Controller.
func (c *Controller) Name() string { return "static" }

// Decide implements env.Controller: the same fixed value for all stages,
// regardless of observed state.
func (c *Controller) Decide(env.State) env.Action {
	return env.Action{Threads: [3]int{c.Concurrency, c.Concurrency, c.Concurrency}}
}

// Monolithic is an adaptive-but-coupled controller used in ablations: it
// delegates to an inner controller and then forces all three stages to
// the maximum of the chosen values, emulating the monolithic designs the
// paper criticizes in §III (the slowest component dictates every stage's
// concurrency).
type Monolithic struct {
	Inner env.Controller

	lastInner env.Action
	haveInner bool
}

// Name implements env.Controller.
func (m *Monolithic) Name() string { return "monolithic(" + m.Inner.Name() + ")" }

// Decide implements env.Controller.
func (m *Monolithic) Decide(s env.State) env.Action {
	a := m.Inner.Decide(s)
	m.lastInner, m.haveInner = a, true
	maxN := a.Threads[0]
	for _, n := range a.Threads[1:] {
		if n > maxN {
			maxN = n
		}
	}
	return env.Action{Threads: [3]int{maxN, maxN, maxN}}
}

// ScoredAlternatives implements env.AlternativeScorer: the one candidate
// the coupling discards is the inner controller's uncoupled tuple, so
// the flight recorder's regret for Monolithic is literally the measured
// cost of monolithic coupling. Call after Decide for the same state.
func (m *Monolithic) ScoredAlternatives(s env.State) []env.ScoredAction {
	if !m.haveInner {
		return nil
	}
	return []env.ScoredAction{{
		Action: m.lastInner,
		Score:  env.Utility(s.Throughput, m.lastInner.Threads, env.DefaultK),
		Label:  "uncoupled",
	}}
}
