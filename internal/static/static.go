// Package static implements the Globus-like baseline of Table I: a
// monolithic, statically configured optimizer. Globus (globus-url-copy)
// is driven by fixed concurrency/parallelism settings chosen before the
// transfer (the paper uses concurrency 4, parallelism 8) and never adapts;
// its monolithic architecture couples the read, network, and write stages
// to the same thread count.
package static

import "automdt/internal/env"

// Controller applies a fixed concurrency to every stage dimension: the
// read, write, and connection counts are all Concurrency, with one
// stream per connection (Globus's "concurrency" is its parallel
// connection count), so the total network concurrency stays equal to the
// other stages'.
type Controller struct {
	// Concurrency is the fixed stream count (paper's Globus setting: 4).
	Concurrency int
}

// New creates a static monolithic controller.
func New(concurrency int) *Controller {
	if concurrency < 1 {
		concurrency = 1
	}
	return &Controller{Concurrency: concurrency}
}

// Name implements env.Controller.
func (c *Controller) Name() string { return "static" }

// Decide implements env.Controller: the same fixed value for every
// dimension (one stream per connection), regardless of observed state.
func (c *Controller) Decide(env.State) env.Action {
	return env.ActionOf(c.Concurrency, c.Concurrency, 1, c.Concurrency)
}

// Monolithic is an adaptive-but-coupled controller used in ablations: it
// delegates to an inner controller and then forces the read, conns, and
// write dimensions to the maximum of the chosen values (one stream per
// connection), emulating the monolithic designs the paper criticizes in
// §III (the slowest component dictates every stage's concurrency).
type Monolithic struct {
	Inner env.Controller

	lastInner env.Action
	haveInner bool
}

// Name implements env.Controller.
func (m *Monolithic) Name() string { return "monolithic(" + m.Inner.Name() + ")" }

// Decide implements env.Controller.
func (m *Monolithic) Decide(s env.State) env.Action {
	a := m.Inner.Decide(s)
	m.lastInner, m.haveInner = a, true
	maxN := 1
	for _, n := range a.N {
		if n > maxN {
			maxN = n
		}
	}
	return env.ActionOf(maxN, maxN, 1, maxN)
}

// ScoredAlternatives implements env.AlternativeScorer: the one candidate
// the coupling discards is the inner controller's uncoupled tuple, so
// the flight recorder's regret for Monolithic is literally the measured
// cost of monolithic coupling. Call after Decide for the same state.
func (m *Monolithic) ScoredAlternatives(s env.State) []env.ScoredAction {
	if !m.haveInner {
		return nil
	}
	return []env.ScoredAction{{
		Action: m.lastInner,
		Score:  env.Utility(s.Throughput, m.lastInner, env.DefaultK),
		Label:  "uncoupled",
	}}
}
