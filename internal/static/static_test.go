package static

import (
	"testing"

	"automdt/internal/env"
)

func TestNewClampsToOne(t *testing.T) {
	for _, n := range []int{-5, 0} {
		if c := New(n); c.Concurrency != 1 {
			t.Fatalf("New(%d).Concurrency = %d", n, c.Concurrency)
		}
	}
}

func TestDecideConstant(t *testing.T) {
	c := New(7)
	for i := 0; i < 5; i++ {
		s := env.State{Throughput: env.ThroughputVec(float64(i), 0, 100)}
		if a := c.Decide(s); a != env.ActionOf(7, 7, 1, 7) {
			t.Fatalf("decision %d: %v", i, a.N)
		}
	}
	if c.Name() != "static" {
		t.Fatalf("name %q", c.Name())
	}
}

func TestMonolithicTakesMax(t *testing.T) {
	inner := fixed{env.ActionOf(3, 1, 8, 2)}
	m := &Monolithic{Inner: inner}
	if a := m.Decide(env.State{}); a != env.ActionOf(8, 8, 1, 8) {
		t.Fatalf("monolithic %v", a.N)
	}
	if m.Name() != "monolithic(fixed)" {
		t.Fatalf("name %q", m.Name())
	}
}

type fixed struct{ a env.Action }

func (f fixed) Name() string                { return "fixed" }
func (f fixed) Decide(env.State) env.Action { return f.a }
