package flight

import "time"

// Stage names used at the pipeline seams. Histograms are created on
// first observation, so only seams the process actually exercises appear
// in the metrics export.
const (
	StageRead      = "read"       // sender: one chunk read off disk
	StageNet       = "net"        // sender: one frame written to the wire
	StageWrite     = "write"      // receiver: one chunk written to disk
	StageQueueWait = "queue_wait" // sched: submit→start wait of one job
)

// StageStart returns the span start time, or the zero Time when the
// recorder is off. The zero return is the whole off-path cost: one
// atomic load, no clock read.
func (r *Recorder) StageStart() time.Time {
	if !r.enabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// StageEnd records the elapsed time since start into the stage's
// histogram. A zero start (recorder was off at StageStart) is a no-op,
// so call sites are two unconditional lines around the staged work.
func (r *Recorder) StageEnd(stage string, start time.Time) {
	if start.IsZero() || !r.enabled.Load() {
		return
	}
	r.Hist(stage).Observe(time.Since(start).Seconds())
}

// StageStart is StageStart on the process-wide recorder.
func StageStart() time.Time { return defaultRecorder.StageStart() }

// StageEnd is StageEnd on the process-wide recorder.
func StageEnd(stage string, start time.Time) { defaultRecorder.StageEnd(stage, start) }

// ObserveStage records an already-measured duration (seconds) into a
// stage histogram — for seams that know the wait directly, like the
// scheduler's submit→start queue time.
func (r *Recorder) ObserveStage(stage string, seconds float64) {
	if !r.enabled.Load() {
		return
	}
	r.Hist(stage).Observe(seconds)
}
