package flight

import (
	"sort"
	"time"

	"automdt/internal/env"
)

// DefaultTopK is how many unchosen alternatives a decision event keeps.
const DefaultTopK = 3

// instrumented wraps an env.Controller so every Decide tick emits a
// decision event: the chosen tuple, the top-K alternatives with their
// counterfactual scores, and the regret against the best unchosen
// candidate. It is installed only when the recorder is active (the
// Active check happens once at wrap time, not per tick), so an idle
// recorder costs the engine nothing.
type instrumented struct {
	inner  env.Controller
	rec    *Recorder
	source string
	k      float64
	topK   int

	cum float64 // cumulative regret across this source's trace
	now func() time.Time
}

// WrapController returns inner instrumented to record each decision into
// rec under the given source. k is the utility penalty base (DefaultK if
// <= 0) used to score counterfactual candidates; topK bounds the
// alternatives kept per event (DefaultTopK if <= 0).
//
// If the source already has trace events — a resumed attempt of the same
// session appends to the same ring — the wrapper continues the prior
// attempt's cumulative regret instead of starting from zero, which is
// what makes a multi-attempt session read as one episode.
func WrapController(inner env.Controller, rec *Recorder, source string, k float64, topK int) env.Controller {
	if inner == nil || rec == nil {
		return inner
	}
	if k <= 0 {
		k = env.DefaultK
	}
	if topK <= 0 {
		topK = DefaultTopK
	}
	w := &instrumented{inner: inner, rec: rec, source: source, k: k, topK: topK, now: time.Now}
	if last, ok := rec.Last(source); ok {
		w.cum = last.CumRegret
	}
	return w
}

// Name implements env.Controller, passing the inner name through so
// experiment reports are unchanged by instrumentation.
func (w *instrumented) Name() string { return w.inner.Name() }

// Decide implements env.Controller.
func (w *instrumented) Decide(s env.State) env.Action {
	chosen := w.inner.Decide(s)
	if !w.rec.Active() {
		return chosen
	}

	cands := w.candidates(s, chosen)
	chosenScore := Utility(s, chosen, w.k)
	best := chosenScore
	alts := make([]Alt, 0, len(cands))
	for _, c := range cands {
		if c.Action.N == chosen.N {
			// The chosen action may appear among the self-reported
			// candidates under the controller's own score; keep the
			// counterfactual score for regret consistency.
			continue
		}
		alts = append(alts, Alt{N: c.Action.N, Score: c.Score, Label: c.Label})
		if c.Score > best {
			best = c.Score
		}
	}
	sort.SliceStable(alts, func(i, j int) bool { return alts[i].Score > alts[j].Score })
	if len(alts) > w.topK {
		alts = alts[:w.topK]
	}
	regret := best - chosenScore
	if regret < 0 {
		regret = 0
	}
	w.cum += regret
	w.rec.Record(Event{
		UnixNano:   w.now().UnixNano(),
		Source:     w.source,
		Kind:       KindDecision,
		N:          s.N,
		Throughput: s.Throughput,
		Chosen:     Alt{N: chosen.N, Score: chosenScore},
		Alts:       alts,
		Regret:     regret,
		CumRegret:  w.cum,
		Note:       w.inner.Name(),
	})
	return chosen
}

// candidates collects the alternatives to score against the chosen
// action. Controllers that implement env.AlternativeScorer report the
// moves they actually weighed, rescored counterfactually so every
// candidate in one event shares a scale; everything else gets generic
// neighbors — hold, plus ±1 on each dimension — scored by the same one-step
// counterfactual utility.
func (w *instrumented) candidates(s env.State, chosen env.Action) []env.ScoredAction {
	if as, ok := w.inner.(env.AlternativeScorer); ok {
		if cands := as.ScoredAlternatives(s); len(cands) > 0 {
			for i := range cands {
				cands[i].Score = Utility(s, cands[i].Action, w.k)
			}
			return cands
		}
	}
	cands := make([]env.ScoredAction, 0, 2*int(env.StageCount)+1)
	add := func(t [env.StageCount]int, label string) {
		for i := range t {
			if t[i] < 1 {
				return
			}
		}
		cands = append(cands, env.ScoredAction{
			Action: env.Action{N: t},
			Score:  Utility(s, env.Action{N: t}, w.k),
			Label:  label,
		})
	}
	add(s.N, "hold")
	for i := env.Stage(0); i < env.StageCount; i++ {
		up, down := chosen.N, chosen.N
		up[i]++
		down[i]--
		add(up, i.String()+"+1")
		add(down, i.String()+"-1")
	}
	return cands
}
