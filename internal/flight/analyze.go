package flight

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"automdt/internal/env"
	"automdt/internal/metrics"
)

// SourceSummary is one source's regret profile over a trace.
type SourceSummary struct {
	Source string
	// Kinds counts events by kind.
	Kinds map[string]int
	// Regret summarizes the per-decision regret distribution (N, mean,
	// P50/P95/P99, max).
	Regret metrics.Summary
	// CumRegret is the final cumulative regret of the source's trace.
	CumRegret float64
	// ZeroRegret is the fraction of decisions whose regret was 0 — ticks
	// where no scored alternative beat the chosen action.
	ZeroRegret float64
}

// Summarize groups a trace's events by source and computes each source's
// regret profile, sorted by descending cumulative regret so the most
// regretful controller leads the report.
func Summarize(events []Event) []SourceSummary {
	bySource := make(map[string]*SourceSummary)
	regrets := make(map[string][]float64)
	order := []string{}
	for _, ev := range events {
		s := bySource[ev.Source]
		if s == nil {
			s = &SourceSummary{Source: ev.Source, Kinds: make(map[string]int)}
			bySource[ev.Source] = s
			order = append(order, ev.Source)
		}
		s.Kinds[ev.Kind]++
		regrets[ev.Source] = append(regrets[ev.Source], ev.Regret)
		if ev.CumRegret > s.CumRegret {
			s.CumRegret = ev.CumRegret
		}
	}
	out := make([]SourceSummary, 0, len(order))
	for _, src := range order {
		s := bySource[src]
		rs := regrets[src]
		s.Regret = metrics.Summarize(rs)
		zero := 0
		for _, r := range rs {
			if r == 0 {
				zero++
			}
		}
		if len(rs) > 0 {
			s.ZeroRegret = float64(zero) / float64(len(rs))
		}
		out = append(out, *s)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].CumRegret > out[j].CumRegret })
	return out
}

// TopRegret returns the n highest-regret events of a trace, descending —
// the "moments" view: which specific decisions cost the most.
func TopRegret(events []Event, n int) []Event {
	top := append([]Event(nil), events...)
	sort.SliceStable(top, func(i, j int) bool { return top[i].Regret > top[j].Regret })
	if len(top) > n {
		top = top[:n]
	}
	return top
}

// Render formats a trace as the flightdump report: one regret-summary
// block per source plus the topN highest-regret moments.
func Render(t Trace, topN int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "flight trace: %d events, %d sources, recorder enabled=%v\n",
		len(t.Events), len(t.Sources), t.Enabled)
	sums := Summarize(t.Events)
	if len(sums) == 0 {
		b.WriteString("no events recorded (was the recorder enabled during the run?)\n")
		return b.String()
	}
	b.WriteString("\nper-source regret:\n")
	for _, s := range sums {
		kinds := make([]string, 0, len(s.Kinds))
		for k, n := range s.Kinds {
			kinds = append(kinds, fmt.Sprintf("%s=%d", k, n))
		}
		sort.Strings(kinds)
		fmt.Fprintf(&b, "  %-32s events=%-6d cum=%-10.3f mean=%-8.4f p95=%-8.4f p99=%-8.4f max=%-8.4f zero=%.0f%%  (%s)\n",
			s.Source, s.Regret.N, s.CumRegret, s.Regret.Mean, s.Regret.P95,
			s.Regret.P99, s.Regret.Max, 100*s.ZeroRegret, strings.Join(kinds, " "))
	}
	if topN > 0 {
		b.WriteString("\ntop-regret moments:\n")
		for _, ev := range TopRegret(t.Events, topN) {
			if ev.Regret == 0 {
				break
			}
			ts := time.Unix(0, ev.UnixNano).UTC().Format("15:04:05.000")
			fmt.Fprintf(&b, "  %s %-32s #%-6d %-10s regret=%.4f chose %v",
				ts, ev.Source, ev.Seq, ev.Kind, ev.Regret, chosenLabel(ev.Chosen))
			if len(ev.Alts) > 0 {
				fmt.Fprintf(&b, " over %s", chosenLabel(ev.Alts[0]))
			}
			if ev.Note != "" {
				fmt.Fprintf(&b, "  (%s)", ev.Note)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func chosenLabel(a Alt) string {
	if a.Label != "" && a.N == ([env.StageCount]int{}) {
		return fmt.Sprintf("%s(%.3f)", a.Label, a.Score)
	}
	if a.Label != "" {
		return fmt.Sprintf("%s%v(%.3f)", a.Label, a.N, a.Score)
	}
	return fmt.Sprintf("%v(%.3f)", a.N, a.Score)
}
