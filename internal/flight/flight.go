// Package flight is the decision flight recorder: a lock-cheap,
// ring-buffered structured event log of every decision the transfer
// system makes, with the alternatives each decision scored and a
// counterfactual regret metric, plus per-stage latency histograms at the
// pipeline seams.
//
// Two event families flow through one Recorder:
//
//   - Decision events. Every env.Controller tick (marlin, joint-gd,
//     static, the trained AutoMDT policy), every scheduler admission and
//     rebalance, and every budget-cap clamp records the chosen action,
//     the top-K alternatives with their counterfactual scores, and the
//     regret (best unchosen score minus chosen score). "Fleet P99 was
//     bad" becomes "the arbiter starved job 7 at tick 5000".
//
//   - Stage spans. The read/net/write stage seams in internal/transfer
//     and the queue wait in internal/sched time their per-chunk service
//     into log-bucketed metrics.Histogram aggregates, exported as
//     automdt_*_seconds{quantile} samples.
//
// The recorder is genuinely zero work when off: every entry point first
// loads one atomic flag and returns before any event is built, any clock
// is read, or any lock is taken. Rings are per source, so concurrent
// writers (one per live session plus the scheduler) rarely contend, and
// a full ring overwrites its oldest events rather than blocking or
// growing.
//
// Ring tails double as the substrate for controller warm start on
// resume: a retried attempt of the same session appends to the same ring
// (sources are keyed by session), so the new attempt's wrapper continues
// the previous attempt's cumulative regret and the offline trainer
// (internal/rl) can fold the whole multi-attempt trace into one episode.
package flight

import (
	"sort"
	"sync"
	"sync/atomic"

	"automdt/internal/env"
	"automdt/internal/metrics"
)

// Event kinds.
const (
	// KindDecision is one controller Decide tick.
	KindDecision = "decision"
	// KindAdmission is the scheduler starting one queued job.
	KindAdmission = "admission"
	// KindRebalance is one arbiter budget split across active jobs.
	KindRebalance = "rebalance"
	// KindCap is a budget cap clamping a controller's decision.
	KindCap = "cap"
	// KindReplan is a sender re-planning a dead data connection's
	// in-flight chunks onto survivors (the protocol ≥3 targeted-recovery
	// path). Chosen.Score carries the bytes re-sent; Note records the
	// cause and how many chunks the receiver's ledger pull saved.
	KindReplan = "replan"
	// KindPlace is the fleet placement ring assigning a session to an
	// endpoint. Note records the endpoint and ring state.
	KindPlace = "place"
	// KindReplace is a fleet failover re-placement: a session whose
	// endpoint died resuming on a sibling. Note records victim and
	// successor endpoints.
	KindReplace = "replace"
)

// Alt is one scored candidate action. For controller decisions the score
// is the counterfactual utility U = Σ tᵢ/k^{nᵢ} of holding the observed
// per-stage throughput at the candidate concurrency; for arbiter events
// it is the weighted proportional-fairness objective of the candidate
// allocation.
type Alt struct {
	// N is the candidate concurrency tuple (decision/cap events), one
	// value per env.Stage dimension ⟨read, conns, streams, write⟩.
	N [env.StageCount]int `json:"threads"`
	// Score is the candidate's counterfactual score (higher is better).
	Score float64 `json:"score"`
	// Label names non-tuple candidates (arbiter allocation policies).
	Label string `json:"label,omitempty"`
}

// Event is one recorded decision. Events are JSON-shaped for the
// /debug/flight endpoint and the -flight trace dumps.
type Event struct {
	// Seq is the per-source sequence number (monotonic from 1; gaps mean
	// the ring overwrote evicted events).
	Seq uint64 `json:"seq"`
	// UnixNano is the wall-clock timestamp.
	UnixNano int64 `json:"t"`
	// Source names the decider, e.g. "ctrl:job3-ab12cd:marlin" or
	// "sched:arbiter".
	Source string `json:"source"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// N and Throughput are the observed state the decision saw, indexed
	// by env.Stage ⟨read, conns, streams, write⟩.
	N          [env.StageCount]int `json:"state_threads,omitempty"`
	Throughput env.StageVec        `json:"state_throughput,omitempty"`
	// Chosen is the action taken, with its counterfactual score.
	Chosen Alt `json:"chosen"`
	// Alts are the top-K unchosen alternatives, best first.
	Alts []Alt `json:"alts,omitempty"`
	// Regret is max(0, best unchosen score − chosen score): how much
	// better the best alternative looked under the same counterfactual
	// scoring.
	Regret float64 `json:"regret"`
	// CumRegret is the source's regret accumulated over its whole trace
	// (continued across resumed attempts of the same session).
	CumRegret float64 `json:"cum_regret"`
	// Note carries decision-specific context (job ids, queue wait,
	// allocation summaries).
	Note string `json:"note,omitempty"`
}

// ring is one source's fixed-capacity event buffer.
type ring struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever appended; Seq = next after increment
}

func (r *ring) append(ev Event) (seq uint64, dropped bool) {
	r.mu.Lock()
	r.next++
	ev.Seq = r.next
	i := int((r.next - 1) % uint64(cap(r.buf)))
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[i] = ev
		dropped = true
	}
	r.mu.Unlock()
	return ev.Seq, dropped
}

// events returns the ring's live events with Seq >= since, in order.
func (r *ring) events(since uint64) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) == 0 {
		return out
	}
	// Oldest live event starts at next-len(buf)+1; the buffer wraps at
	// cap, so walk seq order rather than slice order.
	first := r.next - uint64(len(r.buf)) + 1
	for seq := first; seq <= r.next; seq++ {
		if seq < since {
			continue
		}
		out = append(out, r.buf[int((seq-1)%uint64(cap(r.buf)))])
	}
	return out
}

// last returns the most recent event, if any.
func (r *ring) last() (Event, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) == 0 {
		return Event{}, false
	}
	return r.buf[int((r.next-1)%uint64(cap(r.buf)))], true
}

// DefaultCapacity is the per-source ring capacity used when Enable is
// called with a non-positive capacity: at the engine's default 250 ms
// probe interval this holds about 17 minutes of controller decisions.
const DefaultCapacity = 4096

// Recorder is a set of per-source event rings behind one atomic enabled
// flag, plus the stage-latency histograms. The zero value is a disabled
// recorder; most callers use the process-wide Default().
type Recorder struct {
	enabled atomic.Bool
	rcap    atomic.Int64

	mu      sync.RWMutex
	sources map[string]*ring
	hists   map[string]*metrics.Histogram
	horder  []string

	recorded atomic.Int64
	dropped  atomic.Int64
}

// NewRecorder creates a disabled recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		sources: make(map[string]*ring),
		hists:   make(map[string]*metrics.Histogram),
	}
}

// Enable turns recording on with the given per-source ring capacity
// (DefaultCapacity when n <= 0). Already-recorded events are kept;
// changing the capacity applies to rings created afterwards.
func (r *Recorder) Enable(n int) {
	if n <= 0 {
		n = DefaultCapacity
	}
	r.rcap.Store(int64(n))
	r.enabled.Store(true)
}

// Disable turns recording off. Events already recorded remain readable.
func (r *Recorder) Disable() { r.enabled.Store(false) }

// Active reports whether the recorder accepts events — the one-atomic
// check every instrumentation point makes before doing any work.
func (r *Recorder) Active() bool { return r.enabled.Load() }

// Record appends ev to its source's ring, assigning the sequence number.
// It is a no-op when the recorder is off. Callers on hot paths should
// check Active before building the event at all.
func (r *Recorder) Record(ev Event) {
	if !r.enabled.Load() || ev.Source == "" {
		return
	}
	r.mu.RLock()
	rg := r.sources[ev.Source]
	r.mu.RUnlock()
	if rg == nil {
		r.mu.Lock()
		rg = r.sources[ev.Source]
		if rg == nil {
			rg = &ring{buf: make([]Event, 0, int(r.rcap.Load()))}
			r.sources[ev.Source] = rg
		}
		r.mu.Unlock()
	}
	if _, dropped := rg.append(ev); dropped {
		r.dropped.Add(1)
	}
	r.recorded.Add(1)
}

// Sources returns the recorded source names, sorted.
func (r *Recorder) Sources() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.sources))
	for s := range r.sources {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Dump returns the live events of one source (or of every source when
// source is empty), restricted to Seq >= since, grouped by source in
// sorted-source order and in sequence order within each source.
func (r *Recorder) Dump(source string, since uint64) []Event {
	if source != "" {
		r.mu.RLock()
		rg := r.sources[source]
		r.mu.RUnlock()
		if rg == nil {
			return nil
		}
		return rg.events(since)
	}
	var out []Event
	for _, s := range r.Sources() {
		r.mu.RLock()
		rg := r.sources[s]
		r.mu.RUnlock()
		if rg != nil {
			out = append(out, rg.events(since)...)
		}
	}
	return out
}

// Tail returns the last n events of a source (fewer if the ring holds
// fewer). n <= 0 returns nil. This is the resume warm-start read path: a
// retried session's controller seeds itself from the prior attempt's
// trace tail.
func (r *Recorder) Tail(source string, n int) []Event {
	if n <= 0 {
		return nil
	}
	r.mu.RLock()
	rg := r.sources[source]
	r.mu.RUnlock()
	if rg == nil {
		return nil
	}
	evs := rg.events(0)
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Last returns a source's most recent event.
func (r *Recorder) Last(source string) (Event, bool) {
	r.mu.RLock()
	rg := r.sources[source]
	r.mu.RUnlock()
	if rg == nil {
		return Event{}, false
	}
	return rg.last()
}

// Reset drops every recorded event and zeroes the stage histograms and
// counters, keeping the enabled state.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.sources = make(map[string]*ring)
	hists := make([]*metrics.Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()
	for _, h := range hists {
		h.Reset()
	}
	r.recorded.Store(0)
	r.dropped.Store(0)
}

// Hist returns (creating if necessary) the named stage histogram.
func (r *Recorder) Hist(stage string) *metrics.Histogram {
	r.mu.RLock()
	h := r.hists[stage]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[stage]; h == nil {
		h = &metrics.Histogram{}
		r.hists[stage] = h
		r.horder = append(r.horder, stage)
	}
	return h
}

// MetricsSnapshot exports the recorder's counters and every stage
// histogram in the shared text format: automdt_flight_* counters plus
// one automdt_stage_<stage>_seconds{quantile} family per seam.
func (r *Recorder) MetricsSnapshot() metrics.Snapshot {
	var snap metrics.Snapshot
	enabled := 0.0
	if r.Active() {
		enabled = 1
	}
	snap.Add("automdt_flight_enabled", enabled)
	snap.Add("automdt_flight_events_total", float64(r.recorded.Load()))
	snap.Add("automdt_flight_events_evicted_total", float64(r.dropped.Load()))
	r.mu.RLock()
	snap.Add("automdt_flight_sources", float64(len(r.sources)))
	stages := append([]string(nil), r.horder...)
	r.mu.RUnlock()
	sort.Strings(stages)
	for _, stage := range stages {
		snap.AddHistogram("automdt_stage_"+stage+"_seconds", r.Hist(stage))
	}
	return snap
}

// defaultRecorder is the process-wide recorder that the transfer engine,
// the scheduler, and the cmd binaries share — mirroring the process-wide
// transfer arena and resume counters, so wiring a recorder through every
// layer is not a config-plumbing exercise.
var defaultRecorder = NewRecorder()

// Default returns the process-wide recorder.
func Default() *Recorder { return defaultRecorder }

// Enable turns the process-wide recorder on (capacity <= 0 means
// DefaultCapacity per source).
func Enable(capacity int) { defaultRecorder.Enable(capacity) }

// Disable turns the process-wide recorder off.
func Disable() { defaultRecorder.Disable() }

// Active reports whether the process-wide recorder accepts events.
func Active() bool { return defaultRecorder.Active() }

// Record appends to the process-wide recorder.
func Record(ev Event) { defaultRecorder.Record(ev) }

// Utility is the counterfactual score shared by decision instrumentation:
// the paper's U = Σ tᵢ/k^{nᵢ} evaluated at the observed throughput and a
// candidate concurrency. Holding throughput fixed is the one-step
// counterfactual: "had we run candidate n instead, same flow, what would
// the utility have been".
func Utility(s env.State, a env.Action, k float64) float64 {
	if k <= 0 {
		k = env.DefaultK
	}
	return env.Utility(s.Throughput, a, k)
}
