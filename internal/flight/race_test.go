package flight

import (
	"sync"
	"testing"

	"automdt/internal/env"
)

// TestRecorderConcurrentStress hammers one recorder from many goroutines —
// event writers on shared and private sources, stage spans, wrapped
// controllers, and concurrent readers plus Reset/Enable/Disable flips —
// and relies on -race (the CI race job runs this package) to prove the
// ring and histogram paths are data-race free. The only invariant checked
// here is that nothing panics and dumps stay well-formed.
func TestRecorderConcurrentStress(t *testing.T) {
	r := newEnabled(32)
	const (
		writers = 8
		iters   = 500
	)
	var wg sync.WaitGroup

	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := "shared"
			if i%2 == 0 {
				src = "private-" + string(rune('a'+i))
			}
			w := WrapController(scripted{act: env.ActionOf(2, 2, 2, 2)}, r, "ctrl-"+src, env.DefaultK, 2)
			st := env.State{N: [env.StageCount]int{1, 1, 1, 1}, Throughput: env.ThroughputVec(10, 5, 7)}
			for n := 0; n < iters; n++ {
				r.Record(Event{Source: src, Kind: KindDecision, Regret: float64(n)})
				w.Decide(st)
				span := r.StageStart()
				r.StageEnd(StageRead, span)
				r.ObserveStage(StageQueueWait, 0.001)
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < iters; n++ {
			for _, src := range r.Sources() {
				evs := r.Dump(src, 0)
				for j := 1; j < len(evs); j++ {
					if evs[j].Seq <= evs[j-1].Seq {
						t.Errorf("source %s: non-monotonic Seq %d after %d", src, evs[j].Seq, evs[j-1].Seq)
						return
					}
				}
			}
			r.Tail("shared", 4)
			r.Last("shared")
			r.MetricsSnapshot()
			if n%100 == 50 {
				r.Reset()
			}
			if n%97 == 0 {
				r.Disable()
				r.Enable(32)
			}
		}
	}()

	wg.Wait()
	// The recorder must still be usable after the churn.
	r.Enable(32)
	r.Record(Event{Source: "after", Kind: KindDecision})
	if evs := r.Dump("after", 0); len(evs) != 1 {
		t.Fatalf("post-stress record failed: %v", evs)
	}
}
