package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Trace is the serialized form of a recorder dump: what GET /debug/flight
// returns and what the cmd binaries' -flight flags write, so one file
// format feeds flightdump, offline analysis, and internal/rl retraining.
type Trace struct {
	Enabled bool     `json:"enabled"`
	Sources []string `json:"sources"`
	Events  []Event  `json:"events"`
}

// DumpFile packages a filtered dump with the recorder's source list and
// enabled state.
func (r *Recorder) DumpFile(source string, since uint64) Trace {
	return Trace{
		Enabled: r.Active(),
		Sources: r.Sources(),
		Events:  r.Dump(source, since),
	}
}

// WriteTrace dumps the recorder's full trace as indented JSON to path
// ("-" for stdout).
func (r *Recorder) WriteTrace(path string) error {
	data, err := json.MarshalIndent(r.DumpFile("", 0), "", "  ")
	if err != nil {
		return fmt.Errorf("flight: encode trace: %w", err)
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("flight: write trace: %w", err)
	}
	return nil
}

// ReadTrace parses a Trace previously written by WriteTrace or fetched
// from /debug/flight.
func ReadTrace(rd io.Reader) (Trace, error) {
	var t Trace
	if err := json.NewDecoder(rd).Decode(&t); err != nil {
		return Trace{}, fmt.Errorf("flight: decode trace: %w", err)
	}
	return t, nil
}
