package flight

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"automdt/internal/env"
)

func newEnabled(capacity int) *Recorder {
	r := NewRecorder()
	r.Enable(capacity)
	return r
}

func TestRecorderDisabledDropsEverything(t *testing.T) {
	r := NewRecorder()
	if r.Active() {
		t.Fatal("fresh recorder reports active")
	}
	r.Record(Event{Source: "a", Kind: KindDecision})
	if got := r.Dump("", 0); len(got) != 0 {
		t.Fatalf("disabled recorder stored %d events", len(got))
	}
}

func TestRecorderSequencesPerSource(t *testing.T) {
	r := newEnabled(8)
	for i := 0; i < 3; i++ {
		r.Record(Event{Source: "a", Kind: KindDecision})
		r.Record(Event{Source: "b", Kind: KindDecision})
	}
	for _, src := range []string{"a", "b"} {
		evs := r.Dump(src, 0)
		if len(evs) != 3 {
			t.Fatalf("source %s: %d events, want 3", src, len(evs))
		}
		for i, ev := range evs {
			if ev.Seq != uint64(i+1) {
				t.Fatalf("source %s event %d: Seq=%d, want %d", src, i, ev.Seq, i+1)
			}
		}
	}
	if srcs := r.Sources(); len(srcs) != 2 || srcs[0] != "a" || srcs[1] != "b" {
		t.Fatalf("Sources=%v", srcs)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := newEnabled(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Source: "s", Kind: KindDecision, Note: fmt.Sprint(i)})
	}
	evs := r.Dump("s", 0)
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want capacity 4", len(evs))
	}
	// The live window is the last four appends, in order, keeping their
	// original sequence numbers (7..10) — a Seq gap at the front tells a
	// reader that events 1..6 were evicted.
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d: Seq=%d, want %d", i, ev.Seq, want)
		}
		if want := fmt.Sprint(6 + i); ev.Note != want {
			t.Fatalf("event %d: Note=%q, want %q", i, ev.Note, want)
		}
	}
}

func TestDumpSinceAndSourceFilters(t *testing.T) {
	r := newEnabled(8)
	for i := 0; i < 5; i++ {
		r.Record(Event{Source: "a", Kind: KindDecision})
	}
	r.Record(Event{Source: "b", Kind: KindAdmission})
	if evs := r.Dump("a", 4); len(evs) != 2 || evs[0].Seq != 4 {
		t.Fatalf("since=4 dump: %+v", evs)
	}
	if evs := r.Dump("", 0); len(evs) != 6 {
		t.Fatalf("unfiltered dump: %d events, want 6", len(evs))
	}
	if evs := r.Dump("missing", 0); evs != nil {
		t.Fatalf("unknown source: %v", evs)
	}
}

func TestTailReturnsLastN(t *testing.T) {
	r := newEnabled(8)
	for i := 0; i < 6; i++ {
		r.Record(Event{Source: "s", CumRegret: float64(i)})
	}
	tail := r.Tail("s", 2)
	if len(tail) != 2 || tail[1].CumRegret != 5 {
		t.Fatalf("Tail = %+v", tail)
	}
	if got := r.Tail("s", 0); got != nil {
		t.Fatalf("Tail n=0 = %v", got)
	}
	if got := r.Tail("nope", 3); got != nil {
		t.Fatalf("Tail unknown source = %v", got)
	}
	if last, ok := r.Last("s"); !ok || last.CumRegret != 5 {
		t.Fatalf("Last = %+v ok=%v", last, ok)
	}
}

func TestResetClearsEventsKeepsEnabled(t *testing.T) {
	r := newEnabled(8)
	r.Record(Event{Source: "s"})
	r.Hist(StageRead).Observe(0.01)
	r.Reset()
	if evs := r.Dump("", 0); len(evs) != 0 {
		t.Fatalf("Reset left %d events", len(evs))
	}
	if n := r.Hist(StageRead).Count(); n != 0 {
		t.Fatalf("Reset left %d histogram observations", n)
	}
	if !r.Active() {
		t.Fatal("Reset disabled the recorder")
	}
	r.Record(Event{Source: "s"})
	if evs := r.Dump("s", 0); len(evs) != 1 || evs[0].Seq != 1 {
		t.Fatalf("post-Reset sequence: %+v", evs)
	}
}

func TestStageSpansRecordOnlyWhenEnabled(t *testing.T) {
	r := NewRecorder()
	if start := r.StageStart(); !start.IsZero() {
		t.Fatal("disabled StageStart returned a live clock reading")
	}
	r.StageEnd(StageRead, r.StageStart())
	r.Enable(0)
	r.StageEnd(StageRead, r.StageStart())
	if n := r.Hist(StageRead).Count(); n != 1 {
		t.Fatalf("enabled span count=%d, want 1", n)
	}
	// A span started while enabled but ended after Disable is dropped.
	start := r.StageStart()
	r.Disable()
	r.StageEnd(StageRead, start)
	if n := r.Hist(StageRead).Count(); n != 1 {
		t.Fatalf("span across Disable leaked: count=%d", n)
	}
}

func TestMetricsSnapshotExportsCountersAndHistograms(t *testing.T) {
	r := newEnabled(2)
	r.Record(Event{Source: "s"})
	r.Record(Event{Source: "s"})
	r.Record(Event{Source: "s"}) // third append evicts the first
	r.ObserveStage(StageQueueWait, 0.5)
	text := r.MetricsSnapshot().Text()
	for _, want := range []string{
		"automdt_flight_enabled 1",
		"automdt_flight_events_total 3",
		"automdt_flight_events_evicted_total 1",
		"automdt_flight_sources 1",
		`automdt_stage_queue_wait_seconds{quantile="0.99"}`,
		"automdt_stage_queue_wait_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, text)
		}
	}
}

// scripted is a controller that always returns a fixed action.
type scripted struct {
	act env.Action
}

func (s scripted) Name() string                { return "scripted" }
func (s scripted) Decide(env.State) env.Action { return s.act }

// scriptedScorer additionally self-reports scored alternatives, like the
// real controllers' AlternativeScorer implementations.
type scriptedScorer struct {
	scripted
	alts []env.ScoredAction
}

func (s scriptedScorer) ScoredAlternatives(env.State) []env.ScoredAction { return s.alts }

func TestWrapControllerRegretHandScored(t *testing.T) {
	// Observed flow: 10 Mbps per stage at ⟨2,2,2⟩. The controller jumps to
	// ⟨4,4,4⟩. Candidates are the hold ⟨2,2,2⟩ plus each ±1 neighbor of the
	// chosen tuple; with throughput held fixed, utility decreases in
	// concurrency, so the best alternative is the hold and the regret is
	// the hand-computed utility gap U(2,2,2) − U(4,4,4).
	r := newEnabled(8)
	state := env.State{N: [env.StageCount]int{2, 2, 2, 2}, Throughput: env.StageVec{10, 10, 10, 10}}
	chosen := env.ActionOf(4, 4, 4, 4)
	w := WrapController(scripted{act: chosen}, r, "t", env.DefaultK, 3)
	if got := w.Decide(state); got != chosen {
		t.Fatalf("wrapper changed the decision: %v", got)
	}
	evs := r.Dump("t", 0)
	if len(evs) != 1 {
		t.Fatalf("%d events, want 1", len(evs))
	}
	ev := evs[0]
	u := func(a env.Action) float64 { return env.Utility(state.Throughput, a, env.DefaultK) }
	wantRegret := u(env.ActionOf(2, 2, 2, 2)) - u(chosen)
	if math.Abs(ev.Regret-wantRegret) > 1e-12 {
		t.Fatalf("regret=%.9f, want %.9f", ev.Regret, wantRegret)
	}
	if math.Abs(ev.Chosen.Score-u(chosen)) > 1e-12 {
		t.Fatalf("chosen score=%.9f, want %.9f", ev.Chosen.Score, u(chosen))
	}
	if ev.Kind != KindDecision || ev.Source != "t" || ev.Note != "scripted" {
		t.Fatalf("event metadata: %+v", ev)
	}
	if ev.N != state.N || ev.Throughput != state.Throughput {
		t.Fatalf("event state: %+v", ev)
	}
	if len(ev.Alts) != 3 {
		t.Fatalf("kept %d alts, want topK=3", len(ev.Alts))
	}
	if ev.Alts[0].N != [env.StageCount]int{2, 2, 2, 2} {
		t.Fatalf("best alt=%v, want hold [2 2 2 2]", ev.Alts[0].N)
	}
	for i := 1; i < len(ev.Alts); i++ {
		if ev.Alts[i].Score > ev.Alts[i-1].Score {
			t.Fatal("alternatives not sorted by descending score")
		}
	}
	if ev.CumRegret != ev.Regret {
		t.Fatalf("first-event CumRegret=%v, want regret %v", ev.CumRegret, ev.Regret)
	}
}

func TestWrapControllerZeroRegretWhenChosenIsBest(t *testing.T) {
	// Holding at minimal concurrency: every candidate scores lower, so the
	// regret clamps to zero rather than going negative.
	r := newEnabled(8)
	state := env.State{N: [env.StageCount]int{1, 1, 1, 1}, Throughput: env.StageVec{5, 5, 5, 5}}
	w := WrapController(scripted{act: env.ActionOf(1, 1, 1, 1)}, r, "t", 0, 0)
	w.Decide(state)
	ev := r.Dump("t", 0)[0]
	if ev.Regret != 0 {
		t.Fatalf("regret=%v, want 0", ev.Regret)
	}
}

func TestWrapControllerUsesSelfReportedAlternatives(t *testing.T) {
	r := newEnabled(8)
	state := env.State{N: [env.StageCount]int{3, 3, 3, 3}, Throughput: env.StageVec{10, 10, 10, 10}}
	chosen := env.ActionOf(4, 4, 4, 4)
	alt := env.ActionOf(2, 2, 2, 2)
	w := WrapController(scriptedScorer{
		scripted: scripted{act: chosen},
		alts: []env.ScoredAction{
			{Action: chosen, Score: 99, Label: "chosen"},
			{Action: alt, Score: -1, Label: "reverse"},
		},
	}, r, "t", env.DefaultK, 3)
	w.Decide(state)
	ev := r.Dump("t", 0)[0]
	if len(ev.Alts) != 1 || ev.Alts[0].Label != "reverse" {
		t.Fatalf("alts=%+v, want only the self-reported non-chosen candidate", ev.Alts)
	}
	// Self-reported scores are rescored counterfactually so every event
	// shares one scale: regret = U(alt) − U(chosen) at observed
	// throughput, not the controller's internal −1 vs 99.
	u := func(a env.Action) float64 { return env.Utility(state.Throughput, a, env.DefaultK) }
	want := u(alt) - u(chosen)
	if math.Abs(ev.Regret-want) > 1e-12 {
		t.Fatalf("regret=%.9f, want %.9f", ev.Regret, want)
	}
}

func TestWrapControllerCumulativeAndWarmStart(t *testing.T) {
	r := newEnabled(8)
	state := env.State{N: [env.StageCount]int{1, 1, 1, 1}, Throughput: env.StageVec{10, 10, 10, 10}}
	w := WrapController(scripted{act: env.ActionOf(3, 3, 3, 3)}, r, "sess", env.DefaultK, 3)
	w.Decide(state)
	w.Decide(state)
	evs := r.Dump("sess", 0)
	if evs[0].Regret == 0 || evs[1].CumRegret <= evs[0].CumRegret {
		t.Fatalf("cumulative regret not accumulating: %+v", evs)
	}
	// A second wrapper on the same source — a resumed attempt of the same
	// session — continues the cumulative series instead of restarting it.
	w2 := WrapController(scripted{act: env.ActionOf(3, 3, 3, 3)}, r, "sess", env.DefaultK, 3)
	w2.Decide(state)
	evs = r.Dump("sess", 0)
	last := evs[len(evs)-1]
	if last.CumRegret <= evs[1].CumRegret {
		t.Fatalf("warm start lost cumulative regret: %+v then %+v", evs[1], last)
	}
}

func TestWrapControllerInactiveRecorderRecordsNothing(t *testing.T) {
	r := NewRecorder() // never enabled
	w := WrapController(scripted{act: env.ActionOf(2, 2, 2, 2)}, r, "t", 0, 0)
	w.Decide(env.State{N: [env.StageCount]int{1, 1, 1, 1}})
	if evs := r.Dump("", 0); len(evs) != 0 {
		t.Fatalf("inactive recorder got %d events", len(evs))
	}
	if w.Name() != "scripted" {
		t.Fatalf("wrapper name=%q", w.Name())
	}
}

func TestUtilityFallsBackToDefaultK(t *testing.T) {
	s := env.State{Throughput: env.StageVec{10, 10, 10, 10}}
	got := Utility(s, env.ActionOf(1, 1, 1, 1), 0)
	want := env.Utility(s.Throughput, env.ActionOf(1, 1, 1, 1), env.DefaultK)
	if got != want {
		t.Fatalf("Utility(k=0)=%v, want DefaultK value %v", got, want)
	}
}
